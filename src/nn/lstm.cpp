#include "nn/lstm.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/tensor.hpp"

namespace biq::nn {

LstmCell::LstmCell(std::unique_ptr<LinearLayer> input_proj,
                   std::unique_ptr<LinearLayer> recurrent_proj,
                   std::vector<float> bias)
    : in_(input_proj->in_features()),
      hidden_(recurrent_proj->in_features()),
      wx_(std::move(input_proj)), wh_(std::move(recurrent_proj)),
      bias_(std::move(bias)) {
  if (wx_->out_features() != 4 * hidden_ || wh_->out_features() != 4 * hidden_) {
    throw std::invalid_argument("LstmCell: projections must output 4*hidden");
  }
  if (bias_.size() != 4 * hidden_) {
    throw std::invalid_argument("LstmCell: bias must have length 4*hidden");
  }
}

void LstmCell::step(const float* x_t, float* h, float* c) const {
  // Single-column matmuls: the b == 1 (GEMV) path of the engines. The
  // caller's buffers are viewed in place — no staging copies — and
  // bound-context projections run their cached single-column plan.
  const ConstMatrixView xin(x_t, in_, 1, in_);
  const ConstMatrixView hin(h, hidden_, 1, hidden_);

  Matrix gx(4 * hidden_, 1, /*zero_fill=*/false);
  Matrix gh(4 * hidden_, 1, /*zero_fill=*/false);
  wx_->forward(xin, gx);
  wh_->forward(hin, gh);
  combine_preactivations(gx.col(0), gh.col(0));
  apply_gates(gh.col(0), h, c);
}

void LstmCell::combine_preactivations(const float* px,
                                      float* ph) const noexcept {
  // (ph + bias) + px, NOT px + ph + bias: the fused scan's recurrent
  // GEMV epilogue adds the bias first and the px residual second.
  for (std::size_t j = 0; j < 4 * hidden_; ++j) {
    ph[j] = (ph[j] + bias_[j]) + px[j];
  }
}

void LstmCell::apply_gates(const float* pre, float* h,
                           float* c) const noexcept {
  for (std::size_t j = 0; j < hidden_; ++j) {
    const float gi = sigmoid(pre[j]);
    const float gf = sigmoid(pre[hidden_ + j]);
    const float gg = std::tanh(pre[2 * hidden_ + j]);
    const float go = sigmoid(pre[3 * hidden_ + j]);
    c[j] = gf * c[j] + gi * gg;
    h[j] = go * std::tanh(c[j]);
  }
}

LstmCell::ScanPlan LstmCell::plan_scan(ModulePlanContext& mpc) const {
  ScanPlan p;
  p.cell_ = this;
  p.fused_ = mpc.fuse();
  p.sgx_ = mpc.acquire(4 * hidden_, 1);
  p.sgh_ = mpc.acquire(4 * hidden_, 1);
  p.sh_ = mpc.acquire(hidden_, 1);
  p.sc_ = mpc.acquire(hidden_, 1);
  p.wx_ = LinearPlan(*wx_, 1, mpc.exec());
  if (p.fused_) {
    // The recurrent layer carries no bias of its own, so the cell's
    // gate bias rides its plan as an override, and gx arrives as the
    // run-time residual: gh = (Wh.h + bias) + gx in the GEMV's epilogue.
    LinearFusion fusion;
    fusion.residual = true;
    fusion.bias = &bias_;
    p.wh_ = LinearPlan(*wh_, 1, mpc.exec(), fusion);
  } else {
    p.wh_ = LinearPlan(*wh_, 1, mpc.exec());
  }
  return p;
}

void LstmCell::ScanPlan::release(ModulePlanContext& mpc) const {
  mpc.release(sgx_);
  mpc.release(sgh_);
  mpc.release(sh_);
  mpc.release(sc_);
}

void LstmCell::ScanPlan::run(float* base, ConstMatrixView x, MatrixView y,
                             bool reverse, const PrepHandle* xpreps) const {
  const MatrixView gx = sgx_.view(base);
  const MatrixView gh = sgh_.view(base);
  const MatrixView h = sh_.view(base);
  const MatrixView c = sc_.view(base);
  h.set_zero();
  c.set_zero();
  const std::size_t frames = x.cols();
  const std::size_t hidden = cell_->hidden_size();
  for (std::size_t s = 0; s < frames; ++s) {
    const std::size_t t = reverse ? frames - 1 - s : s;
    if (xpreps != nullptr) {
      wx_.run(xpreps[t], gx);
    } else {
      wx_.run(x.col_block(t, 1), gx);
    }
    if (fused_) {
      wh_.run(h, gh, gx);  // gh = (Wh.h + bias) + gx, one fused pass
    } else {
      wh_.run(h, gh);
      cell_->combine_preactivations(gx.col(0), gh.col(0));
    }
    cell_->apply_gates(gh.col(0), h.col(0), c.col(0));
    float* out = y.col(t);
    const float* hp = h.col(0);
    for (std::size_t i = 0; i < hidden; ++i) out[i] = hp[i];
  }
}

namespace {

class LstmStep final : public ModuleStep {
 public:
  explicit LstmStep(LstmCell::ScanPlan scan) : scan_(std::move(scan)) {}

  void run_step(float* base, ConstMatrixView x, MatrixView y) const override {
    scan_.run(base, x, y, /*reverse=*/false);
  }

 private:
  LstmCell::ScanPlan scan_;
};

class BiLstmStep final : public ModuleStep {
 public:
  BiLstmStep(LstmCell::ScanPlan fw, LstmCell::ScanPlan bw, std::size_t hidden)
      : fw_(std::move(fw)), bw_(std::move(bw)), hidden_(hidden) {}

  /// Shared-prep variant: `sprep` holds one prep column per frame
  /// (stride = sprep.rows() floats); run_step prepares every frame once
  /// through the forward cell's input-projection plan, then BOTH scans
  /// consume the handles — each frame's artifact is built once instead
  /// of twice. Both directions' prep keys were verified equal by the
  /// caller, so the backward scan reads the forward plan's artifacts
  /// bitwise-exactly as its own prepare would have written them.
  BiLstmStep(LstmCell::ScanPlan fw, LstmCell::ScanPlan bw, std::size_t hidden,
             ModelSlot sprep, std::size_t frames)
      : fw_(std::move(fw)), bw_(std::move(bw)), hidden_(hidden),
        share_(true), sprep_(sprep), xpreps_(frames) {}

  void run_step(float* base, ConstMatrixView x, MatrixView y) const override {
    const PrepHandle* preps = nullptr;
    if (share_) {
      float* prep_base = base + sprep_.offset();
      const std::size_t stride = sprep_.rows();
      for (std::size_t t = 0; t < x.cols(); ++t) {
        xpreps_[t].bind(prep_base + t * stride, stride);
        fw_.wx_plan().prepare(x.col_block(t, 1), xpreps_[t]);
      }
      preps = xpreps_.data();
    }
    fw_.run(base, x, y.block(0, hidden_, 0, y.cols()), /*reverse=*/false,
            preps);
    bw_.run(base, x, y.block(hidden_, hidden_, 0, y.cols()), /*reverse=*/true,
            preps);
  }

 private:
  LstmCell::ScanPlan fw_, bw_;
  std::size_t hidden_;
  bool share_ = false;
  ModelSlot sprep_;  // prep_stride x T; column t = frame t's artifact
  // Sized at plan time, rebound to the arena each run_step — warm runs
  // allocate nothing (one caller at a time owns a running plan).
  mutable std::vector<PrepHandle> xpreps_;
};

}  // namespace

Shape Lstm::out_shape(Shape in) const {
  check_in_rows(in, "Lstm");
  return {cell_.hidden_size(), in.cols};
}

std::unique_ptr<ModuleStep> Lstm::plan_into(ModulePlanContext& mpc) const {
  LstmCell::ScanPlan scan = cell_.plan_scan(mpc);
  scan.release(mpc);  // state slots live only while this step runs
  return std::make_unique<LstmStep>(std::move(scan));
}

Shape BiLstm::out_shape(Shape in) const {
  check_in_rows(in, "BiLstm");
  return {2 * hidden_size(), in.cols};
}

std::unique_ptr<ModuleStep> BiLstm::plan_into(ModulePlanContext& mpc) const {
  if (mpc.share_prep()) {
    // Both directions read every frame of the same x, so when their
    // input projections freeze identical activation artifacts (equal
    // prep keys), each frame's LUT/quantization builds once and both
    // scans consume it — the build cost halves. Probing requires both
    // scans' plans up front, so their slots coexist (a few 4h/h
    // vectors — noise next to the per-frame prep slab) and the prep
    // slot spans the whole step: its last reader is the backward scan's
    // final frame.
    LstmCell::ScanPlan fw = fw_.cell().plan_scan(mpc);
    LstmCell::ScanPlan bw = bw_.cell().plan_scan(mpc);
    const bool share = shareable_prep({&fw.wx_plan(), &bw.wx_plan()});
    ModelSlot sprep;
    if (share) {
      // One column per frame, stride rounded so every frame's artifact
      // keeps the arena base's 64-byte alignment.
      constexpr std::size_t kAlignFloats = 16;
      const std::size_t stride =
          (fw.wx_plan().prep_floats() + kAlignFloats - 1) / kAlignFloats *
          kAlignFloats;
      sprep = mpc.acquire(stride, mpc.batch());
    }
    fw.release(mpc);
    bw.release(mpc);
    if (share) {
      mpc.release(sprep);
      return std::make_unique<BiLstmStep>(std::move(fw), std::move(bw),
                                          hidden_size(), sprep, mpc.batch());
    }
    return std::make_unique<BiLstmStep>(std::move(fw), std::move(bw),
                                        hidden_size());
  }
  // Unshared: the directions run sequentially, so the backward scan's
  // slots reuse the forward scan's released storage.
  LstmCell::ScanPlan fw = fw_.cell().plan_scan(mpc);
  fw.release(mpc);
  LstmCell::ScanPlan bw = bw_.cell().plan_scan(mpc);
  bw.release(mpc);
  return std::make_unique<BiLstmStep>(std::move(fw), std::move(bw),
                                      hidden_size());
}

void Lstm::forward(ConstMatrixView x, MatrixView h_out) const {
  const std::size_t hidden = cell_.hidden_size();
  if (x.rows() != cell_.input_size() || h_out.rows() != hidden ||
      h_out.cols() != x.cols()) {
    throw std::invalid_argument("Lstm::forward: shape mismatch");
  }
  std::vector<float> h(hidden, 0.0f), c(hidden, 0.0f);
  for (std::size_t t = 0; t < x.cols(); ++t) {
    cell_.step(x.col(t), h.data(), c.data());
    float* out = h_out.col(t);
    for (std::size_t i = 0; i < hidden; ++i) out[i] = h[i];
  }
}

void Lstm::forward_reverse(ConstMatrixView x, MatrixView h_out) const {
  const std::size_t hidden = cell_.hidden_size();
  if (x.rows() != cell_.input_size() || h_out.rows() != hidden ||
      h_out.cols() != x.cols()) {
    throw std::invalid_argument("Lstm::forward_reverse: shape mismatch");
  }
  std::vector<float> h(hidden, 0.0f), c(hidden, 0.0f);
  for (std::size_t t = x.cols(); t-- > 0;) {
    cell_.step(x.col(t), h.data(), c.data());
    float* out = h_out.col(t);
    for (std::size_t i = 0; i < hidden; ++i) out[i] = h[i];
  }
}

BiLstm::BiLstm(LstmCell forward_cell, LstmCell backward_cell)
    : fw_(std::move(forward_cell)), bw_(std::move(backward_cell)) {
  if (fw_.cell().hidden_size() != bw_.cell().hidden_size() ||
      fw_.cell().input_size() != bw_.cell().input_size()) {
    throw std::invalid_argument("BiLstm: direction shape mismatch");
  }
}

void BiLstm::forward(ConstMatrixView x, MatrixView h_out) const {
  const std::size_t hidden = hidden_size();
  if (h_out.rows() != 2 * hidden || h_out.cols() != x.cols()) {
    throw std::invalid_argument("BiLstm::forward: shape mismatch");
  }
  Matrix hf(hidden, x.cols(), /*zero_fill=*/false);
  Matrix hb(hidden, x.cols(), /*zero_fill=*/false);
  fw_.forward(x, hf);
  bw_.forward_reverse(x, hb);
  for (std::size_t t = 0; t < x.cols(); ++t) {
    float* out = h_out.col(t);
    const float* f = hf.col(t);
    const float* b = hb.col(t);
    for (std::size_t i = 0; i < hidden; ++i) out[i] = f[i];
    for (std::size_t i = 0; i < hidden; ++i) out[hidden + i] = b[i];
  }
}

LstmCell make_lstm_cell(std::size_t input, std::size_t hidden,
                        std::uint64_t seed, const QuantSpec& spec,
                        ExecContext* ctx) {
  Rng rng(seed);
  Matrix wx = xavier_uniform(4 * hidden, input, rng);
  Matrix wh = xavier_uniform(4 * hidden, hidden, rng);
  std::vector<float> bias(4 * hidden, 0.0f);
  // Standard trick: forget-gate bias starts at 1 for stable gradients —
  // kept here so float and quantized cells match common checkpoints.
  for (std::size_t j = 0; j < hidden; ++j) bias[hidden + j] = 1.0f;

  auto wx_layer = make_linear(wx, std::vector<float>(), spec.weight_bits,
                              spec.method, spec.kernel, ctx);
  auto wh_layer = make_linear(wh, std::vector<float>(), spec.weight_bits,
                              spec.method, spec.kernel, ctx);
  return LstmCell(std::move(wx_layer), std::move(wh_layer), std::move(bias));
}

}  // namespace biq::nn
