// Activation-tensor conventions and helpers for the NN substrate.
// Activations are col-major Matrix values: rows = feature dimension,
// cols = tokens (sequence positions) or batch elements — exactly the
// X in the paper's Y = W.X, so every layer feeds the GEMM/BiQGEMM
// kernels without reshuffling.
#pragma once

#include <vector>

#include "matrix/matrix.hpp"

namespace biq::nn {

/// y(i, c) += bias[i] for every column c. bias.size() must equal y.rows().
/// Takes a (possibly strided) view; a Matrix converts implicitly.
void add_bias(MatrixView y, const std::vector<float>& bias);

/// Column-wise copy of src into dst (shapes must match). Views — arena
/// slots and buffer windows copy without staging.
void copy_into(ConstMatrixView src, MatrixView dst);

/// dst = a + b element-wise (residual connections). dst may alias a or b.
void add_into(ConstMatrixView a, ConstMatrixView b, MatrixView dst);

/// Plain transpose (used by attention score math in tests).
[[nodiscard]] Matrix transpose(const Matrix& a);

/// Deterministic Xavier-uniform initialized weight matrix
/// (limit sqrt(6/(fan_in+fan_out))) — shared by float and quantized
/// builds so both see identical parameters.
[[nodiscard]] Matrix xavier_uniform(std::size_t rows, std::size_t cols, Rng& rng);

}  // namespace biq::nn
