// LayerNorm over the feature dimension (rows) of each column — the
// operation the paper cites as the reason Transformers keep needing
// floating-point math even under INT8 quantization (Sec. II-A). Runs in
// fp32 here, which binary-coding weight quantization permits without any
// format conversions.
#pragma once

#include <vector>

#include "matrix/matrix.hpp"

namespace biq::nn {

class LayerNorm {
 public:
  explicit LayerNorm(std::size_t dim, float eps = 1e-5f)
      : gamma_(dim, 1.0f), beta_(dim, 0.0f), eps_(eps) {}

  [[nodiscard]] std::size_t dim() const noexcept { return gamma_.size(); }

  [[nodiscard]] std::vector<float>& gamma() noexcept { return gamma_; }
  [[nodiscard]] std::vector<float>& beta() noexcept { return beta_; }

  /// Normalizes each column of x in place: per-column mean/variance over
  /// rows, then scale by gamma and shift by beta. Strided view — arena
  /// slots and buffer windows normalize in place; a Matrix converts
  /// implicitly.
  void forward(MatrixView x) const;

 private:
  std::vector<float> gamma_;
  std::vector<float> beta_;
  float eps_;
};

}  // namespace biq::nn
