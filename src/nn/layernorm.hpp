// LayerNorm over the feature dimension (rows) of each column — the
// operation the paper cites as the reason Transformers keep needing
// floating-point math even under INT8 quantization (Sec. II-A). Runs in
// fp32 here, which binary-coding weight quantization permits without any
// format conversions.
#pragma once

#include <vector>

#include "matrix/matrix.hpp"
#include "nn/module.hpp"

namespace biq::nn {

class LayerNorm final : public PlannableModule {
 public:
  explicit LayerNorm(std::size_t dim, float eps = 1e-5f)
      : gamma_(dim, 1.0f), beta_(dim, 0.0f), eps_(eps) {}

  [[nodiscard]] std::size_t dim() const noexcept { return gamma_.size(); }

  [[nodiscard]] std::vector<float>& gamma() noexcept { return gamma_; }
  [[nodiscard]] std::vector<float>& beta() noexcept { return beta_; }
  [[nodiscard]] const std::vector<float>& gamma() const noexcept {
    return gamma_;
  }
  [[nodiscard]] const std::vector<float>& beta() const noexcept {
    return beta_;
  }
  [[nodiscard]] float eps() const noexcept { return eps_; }

  /// Normalizes each column of x in place: per-column mean/variance over
  /// rows, then scale by gamma and shift by beta. Strided view — arena
  /// slots and buffer windows normalize in place; a Matrix converts
  /// implicitly. Delegates to the two-view form with y = x.
  void forward(MatrixView x) const;

  /// PlannableModule: shape-preserving, no GEMMs, no internal slots.
  /// The two-view form normalizes src directly into dst (no copy pass);
  /// y may alias x, and both forms are bitwise identical.
  [[nodiscard]] std::size_t in_rows() const noexcept override {
    return dim();
  }
  /// Mean/variance are per column over rows — columns never interact.
  [[nodiscard]] bool columns_independent() const noexcept override {
    return true;
  }
  [[nodiscard]] Shape out_shape(Shape in) const override;
  [[nodiscard]] std::unique_ptr<ModuleStep> plan_into(
      ModulePlanContext& mpc) const override;
  void forward(ConstMatrixView x, MatrixView y) const override;

 private:
  std::vector<float> gamma_;
  std::vector<float> beta_;
  float eps_;
};

}  // namespace biq::nn
