// Element-wise non-linearities and column softmax. Activations stay fp32
// throughout (the paper quantizes weights only; Sec. II argues activation
// quantization costs accuracy and on-the-fly conversion work).
//
// All entry points take strided views, so planner-assigned arena slots
// and windows of larger buffers transform in place; a whole Matrix
// converts implicitly.
#pragma once

#include "matrix/matrix.hpp"

namespace biq::nn {

enum class Act { kRelu, kGelu, kSigmoid, kTanh };

void apply_relu(MatrixView x) noexcept;
/// tanh-approximation GELU (as used by BERT-family models).
void apply_gelu(MatrixView x) noexcept;
void apply_sigmoid(MatrixView x) noexcept;
void apply_tanh(MatrixView x) noexcept;
void apply(MatrixView x, Act act) noexcept;

/// Scalar versions (LSTM gates operate on vectors).
[[nodiscard]] float sigmoid(float v) noexcept;

/// Numerically-stable softmax over the rows of each column (columns are
/// independent distributions) — the attention-weight normalization.
void softmax_columns(MatrixView x) noexcept;

}  // namespace biq::nn
