// Element-wise non-linearities and column softmax. Activations stay fp32
// throughout (the paper quantizes weights only; Sec. II argues activation
// quantization costs accuracy and on-the-fly conversion work).
//
// The scalar math lives in engine/epilogue.hpp so a non-linearity fused
// into a GEMM plan's output loop and one applied here as a separate pass
// are THE SAME arithmetic — bitwise, not approximately.
//
// All entry points take strided views, so planner-assigned arena slots
// and windows of larger buffers transform in place; a whole Matrix
// converts implicitly.
#pragma once

#include "engine/epilogue.hpp"
#include "matrix/matrix.hpp"
#include "nn/module.hpp"

namespace biq::nn {

enum class Act { kRelu, kGelu, kSigmoid, kTanh };

/// The nn-level activation tag as the engine-level epilogue tag (the two
/// enums exist so engine/ never depends on nn/).
[[nodiscard]] constexpr EpilogueAct to_epilogue_act(Act act) noexcept {
  switch (act) {
    case Act::kRelu: return EpilogueAct::kRelu;
    case Act::kGelu: return EpilogueAct::kGelu;
    case Act::kSigmoid: return EpilogueAct::kSigmoid;
    case Act::kTanh: return EpilogueAct::kTanh;
  }
  return EpilogueAct::kNone;
}

void apply_relu(MatrixView x) noexcept;
/// tanh-approximation GELU (as used by BERT-family models).
void apply_gelu(MatrixView x) noexcept;
void apply_sigmoid(MatrixView x) noexcept;
void apply_tanh(MatrixView x) noexcept;
void apply(MatrixView x, Act act) noexcept;

/// Scalar versions (LSTM gates operate on vectors).
[[nodiscard]] float sigmoid(float v) noexcept;

/// Numerically-stable softmax over the rows of each column (columns are
/// independent distributions) — the attention-weight normalization.
void softmax_columns(MatrixView x) noexcept;

/// Element-wise activation as a module: y(i, c) = act(x(i, c)). Shape
/// preserving, no weights, no internal slots. Inside a plan_chain a
/// Linear -> Activation adjacency is folded into the producer's GEMM
/// epilogue (the step below never runs); standalone it is a plain
/// element-wise pass.
class Activation final : public PlannableModule {
 public:
  Activation(std::size_t dim, Act act) : dim_(dim), act_(act) {}

  [[nodiscard]] Act activation() const noexcept { return act_; }

  [[nodiscard]] std::size_t in_rows() const noexcept override { return dim_; }
  [[nodiscard]] Shape out_shape(Shape in) const override;
  [[nodiscard]] std::unique_ptr<ModuleStep> plan_into(
      ModulePlanContext& mpc) const override;
  /// Element-wise: trivially column-independent.
  [[nodiscard]] bool columns_independent() const noexcept override {
    return true;
  }
  void forward(ConstMatrixView x, MatrixView y) const override;

 private:
  std::size_t dim_;
  Act act_;
};

}  // namespace biq::nn
