#include "nn/attention.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/layernorm.hpp"
#include "nn/tensor.hpp"

namespace biq::nn {
namespace {

/// One attention block's frozen forward: per-projection plans plus the
/// planner slots for q/k/v, the score matrix and the head context —
/// the same attend() routine as the eager forward, temporaries served
/// from the arena.
class AttentionStep final : public ModuleStep {
 public:
  AttentionStep(const MultiHeadAttention& attn, ModulePlanContext& mpc,
                const StepFusion& fusion)
      : attn_(&attn), fuse_(mpc.fuse()),
        input_residual_(fusion.input_residual) {
    const std::size_t tokens = mpc.batch();
    sq_ = mpc.acquire(attn.hidden(), tokens);
    sk_ = mpc.acquire(attn.hidden(), tokens);
    sv_ = mpc.acquire(attn.hidden(), tokens);
    // fuse=off plans every projection as a bare GEMM — the biases run as
    // separate seam passes in run_step, so the A/B isolates the whole
    // epilogue mechanism, bias included.
    const LinearFusion plain{EpilogueAct::kNone, false, nullptr, fuse_};
    q_ = LinearPlan(attn.wq(), tokens, mpc.exec(), plain);
    k_ = LinearPlan(attn.wk(), tokens, mpc.exec(), plain);
    v_ = LinearPlan(attn.wv(), tokens, mpc.exec(), plain);
    // Shared QKV activation prep: the three projections read the SAME
    // x, so when they freeze identical activation artifacts (equal prep
    // keys — same engine family, mu/bits, kernel plane), x's LUT /
    // quantization is built once and consumed three times. The prep
    // slot is acquired here and released BEFORE the score/context
    // slots: its last reader is v_'s consume, which precedes every
    // score write, so the planner may back the score matrix with the
    // prep's storage.
    share_ = mpc.share_prep() && shareable_prep({&q_, &k_, &v_});
    if (share_) {
      sprep_ = mpc.acquire(q_.prep_floats(), 1);
      mpc.release(sprep_);
    }
    sscores_ = mpc.acquire(tokens, tokens);
    scontext_ = mpc.acquire(attn.hidden(), tokens);
    // The requested fusion rides the output projection's epilogue: the
    // block's input x is bound as the residual operand at run time, and
    // a folded LayerNorm normalizes each of y's columns in place as wo's
    // GEMM completes them.
    o_ = LinearPlan(attn.wo(), tokens, mpc.exec(),
                    LinearFusion{fusion.act, fusion.input_residual, nullptr,
                                 fuse_, fusion.ln});
    for (const ModelSlot* s : {&sscores_, &sq_, &sk_, &sv_, &scontext_}) {
      mpc.release(*s);
    }
  }

  void run_step(float* base, ConstMatrixView x, MatrixView y) const override {
    const MatrixView q = sq_.view(base);
    const MatrixView k = sk_.view(base);
    const MatrixView v = sv_.view(base);
    if (share_) {
      xprep_.bind(base + sprep_.offset(), sprep_.extent());
      q_.prepare(x, xprep_);
      q_.run(xprep_, q);
      k_.run(xprep_, k);
      v_.run(xprep_, v);
    } else {
      q_.run(x, q);
      k_.run(x, k);
      v_.run(x, v);
    }
    if (!fuse_) {
      seam_bias(q, attn_->wq());
      seam_bias(k, attn_->wk());
      seam_bias(v, attn_->wv());
    }
    const MatrixView context = scontext_.view(base);
    attn_->attend(q, k, v, sscores_.view(base), context);
    if (input_residual_) {
      o_.run(context, y, x);  // y = wo(context) + bias + x, one pass
    } else {
      o_.run(context, y);
      if (!fuse_) seam_bias(y, attn_->wo());
    }
  }

 private:
  static void seam_bias(MatrixView y, const LinearLayer& layer) {
    if (!layer.bias().empty()) add_bias(y, layer.bias());
  }

  const MultiHeadAttention* attn_;
  bool fuse_;
  bool input_residual_;
  bool share_ = false;
  LinearPlan q_, k_, v_, o_;
  ModelSlot sq_, sk_, sv_, sprep_, sscores_, scontext_;
  // Rebound to sprep_'s arena window each run_step (one caller at a
  // time owns a running plan, so the mutable handle is private state).
  mutable PrepHandle xprep_;
};

}  // namespace

Shape MultiHeadAttention::out_shape(Shape in) const {
  check_in_rows(in, "MultiHeadAttention");
  return in;
}

bool MultiHeadAttention::supports_fusion(
    const StepFusion& fusion) const noexcept {
  if (fusion.ln_split_dst) return false;
  return fusion.ln == nullptr || fusion.ln->dim() == hidden_;
}

std::unique_ptr<ModuleStep> MultiHeadAttention::plan_into(
    ModulePlanContext& mpc) const {
  return std::make_unique<AttentionStep>(*this, mpc, StepFusion{});
}

std::unique_ptr<ModuleStep> MultiHeadAttention::plan_into_fused(
    ModulePlanContext& mpc, const StepFusion& fusion) const {
  return std::make_unique<AttentionStep>(*this, mpc, fusion);
}

MultiHeadAttention::MultiHeadAttention(std::unique_ptr<LinearLayer> wq,
                                       std::unique_ptr<LinearLayer> wk,
                                       std::unique_ptr<LinearLayer> wv,
                                       std::unique_ptr<LinearLayer> wo,
                                       unsigned heads)
    : hidden_(wq->out_features()), heads_(heads),
      head_dim_(heads == 0 ? 0 : hidden_ / heads), wq_(std::move(wq)),
      wk_(std::move(wk)), wv_(std::move(wv)), wo_(std::move(wo)) {
  if (heads_ == 0 || hidden_ % heads_ != 0) {
    throw std::invalid_argument("MultiHeadAttention: heads must divide hidden");
  }
  for (const LinearLayer* p :
       {wq_.get(), wk_.get(), wv_.get(), wo_.get()}) {
    if (p->in_features() != hidden_ || p->out_features() != hidden_) {
      throw std::invalid_argument("MultiHeadAttention: projections must be square");
    }
  }
}

std::size_t MultiHeadAttention::weight_bytes() const noexcept {
  return wq_->weight_bytes() + wk_->weight_bytes() + wv_->weight_bytes() +
         wo_->weight_bytes();
}

void MultiHeadAttention::attend(ConstMatrixView q, ConstMatrixView k,
                                ConstMatrixView v, MatrixView scores,
                                MatrixView context) const {
  const std::size_t t = q.cols();
  if (q.rows() != hidden_ || k.rows() != hidden_ || v.rows() != hidden_ ||
      k.cols() != t || v.cols() != t || context.rows() != hidden_ ||
      context.cols() != t || scores.rows() != t || scores.cols() != t) {
    throw std::invalid_argument("MultiHeadAttention::attend: shape mismatch");
  }
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  context.set_zero();

  for (unsigned h = 0; h < heads_; ++h) {
    // Each head is a strided row window of the packed projections — it
    // never exists as its own dense buffer.
    const std::size_t r0 = h * head_dim_;
    const ConstMatrixView qh = q.block(r0, head_dim_, 0, t);
    const ConstMatrixView kh = k.block(r0, head_dim_, 0, t);
    const ConstMatrixView vh = v.block(r0, head_dim_, 0, t);
    const MatrixView ch = context.block(r0, head_dim_, 0, t);

    // scores(key_tok, query_tok) = <Q_h[:, query], K_h[:, key]> / sqrt(d)
    for (std::size_t qt = 0; qt < t; ++qt) {
      const float* qcol = qh.col(qt);
      for (std::size_t kt = 0; kt < t; ++kt) {
        const float* kcol = kh.col(kt);
        float dot = 0.0f;
        for (std::size_t d = 0; d < head_dim_; ++d) dot += qcol[d] * kcol[d];
        scores(kt, qt) = dot * inv_sqrt_d;
      }
    }
    softmax_columns(scores);
    // context_h[:, query] = sum_key V_h[:, key] * scores(key, query)
    for (std::size_t qt = 0; qt < t; ++qt) {
      float* out = ch.col(qt);
      for (std::size_t kt = 0; kt < t; ++kt) {
        const float wgt = scores(kt, qt);
        const float* vcol = vh.col(kt);
        for (std::size_t d = 0; d < head_dim_; ++d) out[d] += wgt * vcol[d];
      }
    }
  }
}

void MultiHeadAttention::forward(ConstMatrixView x, MatrixView y) const {
  if (x.rows() != hidden_ || y.rows() != hidden_ || y.cols() != x.cols()) {
    throw std::invalid_argument("MultiHeadAttention: shape mismatch");
  }
  const std::size_t t = x.cols();

  Matrix q(hidden_, t, /*zero_fill=*/false);
  Matrix k(hidden_, t, /*zero_fill=*/false);
  Matrix v(hidden_, t, /*zero_fill=*/false);
  wq_->forward(x, q);
  wk_->forward(x, k);
  wv_->forward(x, v);

  Matrix context(hidden_, t, /*zero_fill=*/false);
  Matrix scores(t, t, /*zero_fill=*/false);
  attend(q, k, v, scores, context);

  wo_->forward(context, y);
}

}  // namespace biq::nn
