#include "nn/attention.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/activations.hpp"

namespace biq::nn {

MultiHeadAttention::MultiHeadAttention(std::unique_ptr<LinearLayer> wq,
                                       std::unique_ptr<LinearLayer> wk,
                                       std::unique_ptr<LinearLayer> wv,
                                       std::unique_ptr<LinearLayer> wo,
                                       unsigned heads)
    : hidden_(wq->out_features()), heads_(heads),
      head_dim_(heads == 0 ? 0 : hidden_ / heads), wq_(std::move(wq)),
      wk_(std::move(wk)), wv_(std::move(wv)), wo_(std::move(wo)) {
  if (heads_ == 0 || hidden_ % heads_ != 0) {
    throw std::invalid_argument("MultiHeadAttention: heads must divide hidden");
  }
  for (const LinearLayer* p :
       {wq_.get(), wk_.get(), wv_.get(), wo_.get()}) {
    if (p->in_features() != hidden_ || p->out_features() != hidden_) {
      throw std::invalid_argument("MultiHeadAttention: projections must be square");
    }
  }
}

std::size_t MultiHeadAttention::weight_bytes() const noexcept {
  return wq_->weight_bytes() + wk_->weight_bytes() + wv_->weight_bytes() +
         wo_->weight_bytes();
}

void MultiHeadAttention::attend(ConstMatrixView q, ConstMatrixView k,
                                ConstMatrixView v, MatrixView scores,
                                MatrixView context) const {
  const std::size_t t = q.cols();
  if (q.rows() != hidden_ || k.rows() != hidden_ || v.rows() != hidden_ ||
      k.cols() != t || v.cols() != t || context.rows() != hidden_ ||
      context.cols() != t || scores.rows() != t || scores.cols() != t) {
    throw std::invalid_argument("MultiHeadAttention::attend: shape mismatch");
  }
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  context.set_zero();

  for (unsigned h = 0; h < heads_; ++h) {
    // Each head is a strided row window of the packed projections — it
    // never exists as its own dense buffer.
    const std::size_t r0 = h * head_dim_;
    const ConstMatrixView qh = q.block(r0, head_dim_, 0, t);
    const ConstMatrixView kh = k.block(r0, head_dim_, 0, t);
    const ConstMatrixView vh = v.block(r0, head_dim_, 0, t);
    const MatrixView ch = context.block(r0, head_dim_, 0, t);

    // scores(key_tok, query_tok) = <Q_h[:, query], K_h[:, key]> / sqrt(d)
    for (std::size_t qt = 0; qt < t; ++qt) {
      const float* qcol = qh.col(qt);
      for (std::size_t kt = 0; kt < t; ++kt) {
        const float* kcol = kh.col(kt);
        float dot = 0.0f;
        for (std::size_t d = 0; d < head_dim_; ++d) dot += qcol[d] * kcol[d];
        scores(kt, qt) = dot * inv_sqrt_d;
      }
    }
    softmax_columns(scores);
    // context_h[:, query] = sum_key V_h[:, key] * scores(key, query)
    for (std::size_t qt = 0; qt < t; ++qt) {
      float* out = ch.col(qt);
      for (std::size_t kt = 0; kt < t; ++kt) {
        const float wgt = scores(kt, qt);
        const float* vcol = vh.col(kt);
        for (std::size_t d = 0; d < head_dim_; ++d) out[d] += wgt * vcol[d];
      }
    }
  }
}

void MultiHeadAttention::forward(ConstMatrixView x, MatrixView y) const {
  if (x.rows() != hidden_ || y.rows() != hidden_ || y.cols() != x.cols()) {
    throw std::invalid_argument("MultiHeadAttention: shape mismatch");
  }
  const std::size_t t = x.cols();

  Matrix q(hidden_, t, /*zero_fill=*/false);
  Matrix k(hidden_, t, /*zero_fill=*/false);
  Matrix v(hidden_, t, /*zero_fill=*/false);
  wq_->forward(x, q);
  wk_->forward(x, k);
  wv_->forward(x, v);

  Matrix context(hidden_, t, /*zero_fill=*/false);
  Matrix scores(t, t, /*zero_fill=*/false);
  attend(q, k, v, scores, context);

  wo_->forward(context, y);
}

}  // namespace biq::nn
