// Whole-model planned execution — the prepare/execute split of
// GemmEngine::plan (Sec. II-A: everything derivable before activations
// arrive is computed once) lifted from one GEMM to a whole network.
//
// ModelPlan compiles ANY PlannableModule tree (src/nn/module.hpp) —
// a TransformerEncoder, an Lstm/BiLstm, a bare MultiHeadAttention, or
// an arbitrary Sequential hybrid of them — for one batch width under
// one ExecContext, through one generic walker:
//   * every projection's GemmPlan is frozen up front (LinearPlan =
//     engine plan + bias), so the warm path never plans per call,
//   * every intermediate activation tensor of the module tree goes
//     through ModelPlanner, a liveness-based packer that assigns offsets
//     in ONE arena block, reusing storage across tensors whose lifetimes
//     don't overlap (the 4n x n FFN intermediate and every per-layer
//     temporary collapse to a single per-layer working set),
//   * run(x, y) executes the frozen program with ZERO heap allocations
//     once warm — the serving hot path for fixed-shape traffic.
//
// The arena block itself comes from ExecContext::alloc_model_block(),
// sized at plan time and returned by the plan's destructor — block
// lifetime equals plan lifetime, so plans coexist freely and
// batch-varying replan traffic never grows the context unboundedly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "engine/exec_context.hpp"
#include "matrix/view.hpp"
#include "nn/lstm.hpp"
#include "nn/module.hpp"
#include "nn/transformer.hpp"

namespace biq::nn {

/// One frozen (module, batch, ExecContext) whole-network recipe. Compile
/// once for the bound batch; run() any number of times — warm runs
/// perform zero heap allocations. The plan borrows the module and the
/// context (both must outlive it) and owns its projections' GemmPlans
/// plus the activation arena layout; one caller may run it at a time
/// (it owns the context's scratch and its arena slots while running).
/// Re-compile when the batch width or the context change.
class ModelPlan {
 public:
  /// Compiles the module tree via the generic walker. `batch` is the
  /// token/frame count the plan is bound to: x is module.in_rows() x
  /// batch, y is module.out_shape(...).rows x batch. `fuse` enables
  /// epilogue fusion (bias/activation/residual folded into producer
  /// GEMM plans — the default); fuse = false compiles every seam as a
  /// separate pass, for A/B comparisons. `share_prep` (default on) lets
  /// fan-out steps — attention's Q/K/V, BiLstm's two scans — build each
  /// shared input's activation artifact (LUT / quantized grid /
  /// bit-planes) once and consume it from every reader; off rebuilds
  /// per consumer, for the sharing A/B. `fuse_ln` (default on; only
  /// meaningful while fuse is on) additionally folds LayerNorms into
  /// the preceding projection's column-granular epilogue — off keeps LN
  /// as its own seam pass, for the LN-fusion A/B. Outputs are bitwise
  /// identical across all toggle combinations (the fused arithmetic
  /// order is the contract, and consume replays it exactly; the LN
  /// column math is one shared helper on both paths).
  ModelPlan(const PlannableModule& module, std::size_t batch,
            ExecContext& ctx, bool fuse = true, bool share_prep = true,
            bool fuse_ln = true);

  ~ModelPlan();
  ModelPlan(ModelPlan&&) noexcept;
  ModelPlan& operator=(ModelPlan&&) noexcept;

  /// The hot path: the whole model's forward through the frozen recipe.
  /// x must be input_rows() x batch(), y output_rows() x batch()
  /// (overwritten); both may be strided windows of larger buffers.
  /// Bitwise identical to the module's eager forward. Throws
  /// std::invalid_argument naming the offending dims on any mismatch.
  void run(ConstMatrixView x, MatrixView y) const;

  /// Batch width (tokens / frames) the plan was compiled for.
  [[nodiscard]] std::size_t batch() const noexcept;
  [[nodiscard]] std::size_t input_rows() const noexcept;
  [[nodiscard]] std::size_t output_rows() const noexcept;
  /// Packed activation-arena footprint (the planner's high-water mark).
  [[nodiscard]] std::size_t arena_floats() const noexcept;
  [[nodiscard]] std::size_t arena_bytes() const noexcept {
    return arena_floats() * sizeof(float);
  }
  /// Sum of all planned tensors — arena_floats() <= this; the gap is
  /// the liveness packing's saving.
  [[nodiscard]] std::size_t unpacked_floats() const noexcept;
  [[nodiscard]] ExecContext& context() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Batch-adaptive wrapper (the PlanCache pattern one level up): serves
/// run() from compiled ModelPlans held per batch width, so traffic that
/// alternates between a few widths (a server answering bucket-padded
/// requests) replans NOTHING once every width has been seen. The cache
/// is LRU-bounded: at most `capacity` plans are live at once — each
/// holds an activation arena block on the context, so an unbounded
/// cache would grow the context's footprint with every distinct batch
/// width ever requested. The default capacity keeps all power-of-two
/// buckets up to 128 resident, which is exactly the working set of the
/// serve PlanPool built on top. A model or context change clears the
/// cache (plans are only valid for the pair they were compiled for).
/// The model must outlive the cache. Model may be any PlannableModule
/// type. Like plan compilation itself this is control-path state: one
/// caller at a time.
template <typename Model>
class ModelPlanCache {
 public:
  /// Plans for batches 1, 2, 4, ..., 128 all stay resident.
  static constexpr std::size_t kDefaultCapacity = 8;

  explicit ModelPlanCache(std::size_t capacity = kDefaultCapacity) noexcept
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void run(const Model& model, ConstMatrixView x, MatrixView y,
           ExecContext& ctx) {
    plan_for(model, x.cols(), ctx).run(x, y);
  }

  /// The plan for `batch`, compiled on first use and cached. When the
  /// cache is full the least-recently-used plan is evicted (its arena
  /// block returns to the context).
  [[nodiscard]] const ModelPlan& plan_for(const Model& model,
                                          std::size_t batch,
                                          ExecContext& ctx) {
    if (model_ != &model || ctx_ != &ctx) {
      entries_.clear();
      mru_ = nullptr;
      model_ = &model;
      ctx_ = &ctx;
    }
    for (Entry& e : entries_) {
      if (e.plan->batch() == batch) {
        e.stamp = ++clock_;
        mru_ = e.plan.get();
        return *mru_;
      }
    }
    if (entries_.size() >= capacity_) {
      std::size_t victim = 0;
      for (std::size_t i = 1; i < entries_.size(); ++i) {
        if (entries_[i].stamp < entries_[victim].stamp) victim = i;
      }
      entries_[victim] = std::move(entries_.back());
      entries_.pop_back();
    }
    entries_.push_back(
        Entry{std::make_unique<ModelPlan>(model, batch, ctx), ++clock_});
    mru_ = entries_.back().plan.get();
    return *mru_;
  }

  /// The most-recently-used plan (nullptr before the first run).
  [[nodiscard]] const ModelPlan* plan() const noexcept { return mru_; }

  /// Live cached plans (<= capacity()).
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    std::unique_ptr<ModelPlan> plan;
    std::uint64_t stamp;  // last-use tick; smallest = LRU victim
  };

  std::size_t capacity_;
  std::vector<Entry> entries_;
  const Model* model_ = nullptr;
  const ExecContext* ctx_ = nullptr;
  const ModelPlan* mru_ = nullptr;
  std::uint64_t clock_ = 0;
};

}  // namespace biq::nn
