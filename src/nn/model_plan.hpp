// Whole-model planned execution — the prepare/execute split of
// GemmEngine::plan (Sec. II-A: everything derivable before activations
// arrive is computed once) lifted from one GEMM to a whole network.
//
// ModelPlan compiles a model (TransformerEncoder, Lstm/BiLstm, or a bare
// MultiHeadAttention) for one batch width under one ExecContext:
//   * every projection's GemmPlan is frozen up front (LinearPlan =
//     engine plan + bias), so the warm path never plans per call,
//   * every intermediate activation tensor of the layer graph goes
//     through ModelPlanner, a liveness-based packer that assigns offsets
//     in ONE arena block, reusing storage across tensors whose lifetimes
//     don't overlap (the 4n x n FFN intermediate and every per-layer
//     temporary collapse to a single per-layer working set),
//   * run(x, y) executes the frozen program with ZERO heap allocations
//     once warm — the serving hot path for fixed-shape traffic.
//
// The arena block itself comes from ExecContext::alloc_model_block(),
// sized at plan time and returned by the plan's destructor — block
// lifetime equals plan lifetime, so plans coexist freely and
// batch-varying replan traffic never grows the context unboundedly.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "engine/exec_context.hpp"
#include "matrix/view.hpp"
#include "nn/lstm.hpp"
#include "nn/transformer.hpp"

namespace biq::nn {

/// Liveness-based activation packer. The plan walker declares each
/// intermediate tensor with acquire() when it comes alive and release()
/// when its last reader is done (program order IS the liveness
/// interval); placement is best-fit over the free intervals, so tensors
/// with non-overlapping lifetimes share storage and peak_floats() is the
/// high-water mark of the packed layout, not the sum of tensor sizes.
/// Offsets are 64-byte aligned (16 floats) so every slot is as aligned
/// as the arena base.
class ModelPlanner {
 public:
  /// A planned tensor: {offset into the arena block, rows x cols}. The
  /// view is resolved against the block base at run time — slots are
  /// plain value types frozen into the plan.
  class Slot {
   public:
    Slot() = default;

    [[nodiscard]] std::size_t offset() const noexcept { return offset_; }
    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    /// Floats of arena the slot occupies (size rounded up to alignment).
    [[nodiscard]] std::size_t extent() const noexcept { return extent_; }

    [[nodiscard]] MatrixView view(float* base) const noexcept {
      return {base + offset_, rows_, cols_, rows_};
    }

   private:
    friend class ModelPlanner;
    std::size_t offset_ = 0;
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::size_t extent_ = 0;
  };

  /// Declares a rows x cols fp32 tensor live from now until release().
  [[nodiscard]] Slot acquire(std::size_t rows, std::size_t cols);

  /// Ends the tensor's lifetime: its interval returns to the free list
  /// (coalesced with neighbors) and may back later acquires.
  void release(const Slot& slot);

  /// High-water mark of the packed layout, in floats — the arena block
  /// size the compiled plan allocates.
  [[nodiscard]] std::size_t peak_floats() const noexcept { return end_; }

  /// Sum of every acquire()'s extent — what the layout would cost
  /// without lifetime reuse. peak_floats() <= total; the gap is what the
  /// liveness packing saved.
  [[nodiscard]] std::size_t total_acquired_floats() const noexcept {
    return total_;
  }

 private:
  struct Block {
    std::size_t offset;
    std::size_t size;
  };

  std::vector<Block> free_;  // sorted by offset, coalesced
  std::size_t end_ = 0;      // high-water mark in floats
  std::size_t total_ = 0;
};

using ModelSlot = ModelPlanner::Slot;

/// One frozen (model, batch, ExecContext) whole-network recipe. Compile
/// once for the bound batch; run() any number of times — warm runs
/// perform zero heap allocations. The plan borrows the model and the
/// context (both must outlive it) and owns its projections' GemmPlans
/// plus the activation arena layout; one caller may run it at a time
/// (it owns the context's scratch and its arena slots while running).
/// Re-compile when the batch width or the context change.
class ModelPlan {
 public:
  /// x: hidden x tokens -> y: hidden x tokens through all layers.
  ModelPlan(const TransformerEncoder& model, std::size_t tokens,
            ExecContext& ctx);
  /// x: in x frames -> y: hidden x frames (forward scan).
  ModelPlan(const Lstm& model, std::size_t frames, ExecContext& ctx);
  /// x: in x frames -> y: 2*hidden x frames (both directions; the
  /// backward pass reuses the forward pass's released slots).
  ModelPlan(const BiLstm& model, std::size_t frames, ExecContext& ctx);
  /// x: hidden x tokens -> y: hidden x tokens (one attention block).
  ModelPlan(const MultiHeadAttention& model, std::size_t tokens,
            ExecContext& ctx);

  ~ModelPlan();
  ModelPlan(ModelPlan&&) noexcept;
  ModelPlan& operator=(ModelPlan&&) noexcept;

  /// The hot path: the whole model's forward through the frozen recipe.
  /// x must be input_rows() x batch(), y output_rows() x batch()
  /// (overwritten); both may be strided windows of larger buffers.
  /// Bitwise identical to the model's eager forward. Throws
  /// std::invalid_argument naming the offending dims on any mismatch.
  void run(ConstMatrixView x, MatrixView y) const;

  /// Batch width (tokens / frames) the plan was compiled for.
  [[nodiscard]] std::size_t batch() const noexcept;
  [[nodiscard]] std::size_t input_rows() const noexcept;
  [[nodiscard]] std::size_t output_rows() const noexcept;
  /// Packed activation-arena footprint (the planner's high-water mark).
  [[nodiscard]] std::size_t arena_floats() const noexcept;
  [[nodiscard]] std::size_t arena_bytes() const noexcept {
    return arena_floats() * sizeof(float);
  }
  /// Sum of all planned tensors — arena_floats() <= this; the gap is
  /// the liveness packing's saving.
  [[nodiscard]] std::size_t unpacked_floats() const noexcept;
  [[nodiscard]] ExecContext& context() const noexcept;

  /// Compiled-model skeleton; public only so the per-model impls in the
  /// translation unit can derive from it.
  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

/// Batch-adaptive wrapper (the PlanCache pattern one level up): serves
/// run() from a compiled ModelPlan, re-compiling only when the model,
/// batch width or context change — steady fixed-shape traffic runs the
/// warm plan, a shape change pays one re-plan (the superseded plan's
/// activation block returns to the context automatically). The model
/// must outlive the cache.
template <typename Model>
class ModelPlanCache {
 public:
  void run(const Model& model, ConstMatrixView x, MatrixView y,
           ExecContext& ctx) {
    if (plan_ == nullptr || model_ != &model || plan_->batch() != x.cols() ||
        &plan_->context() != &ctx) {
      plan_ = std::make_unique<ModelPlan>(model, x.cols(), ctx);
      model_ = &model;
    }
    plan_->run(x, y);
  }

  /// The currently compiled plan (nullptr before the first run).
  [[nodiscard]] const ModelPlan* plan() const noexcept { return plan_.get(); }

 private:
  std::unique_ptr<ModelPlan> plan_;
  const Model* model_ = nullptr;
};

}  // namespace biq::nn
