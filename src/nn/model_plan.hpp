// Whole-model planned execution — the prepare/execute split of
// GemmEngine::plan (Sec. II-A: everything derivable before activations
// arrive is computed once) lifted from one GEMM to a whole network.
//
// ModelPlan compiles ANY PlannableModule tree (src/nn/module.hpp) —
// a TransformerEncoder, an Lstm/BiLstm, a bare MultiHeadAttention, or
// an arbitrary Sequential hybrid of them — for one batch width under
// one ExecContext, through one generic walker:
//   * every projection's GemmPlan is frozen up front (LinearPlan =
//     engine plan + bias), so the warm path never plans per call,
//   * every intermediate activation tensor of the module tree goes
//     through ModelPlanner, a liveness-based packer that assigns offsets
//     in ONE arena block, reusing storage across tensors whose lifetimes
//     don't overlap (the 4n x n FFN intermediate and every per-layer
//     temporary collapse to a single per-layer working set),
//   * run(x, y) executes the frozen program with ZERO heap allocations
//     once warm — the serving hot path for fixed-shape traffic.
//
// The arena block itself comes from ExecContext::alloc_model_block(),
// sized at plan time and returned by the plan's destructor — block
// lifetime equals plan lifetime, so plans coexist freely and
// batch-varying replan traffic never grows the context unboundedly.
#pragma once

#include <cstddef>
#include <memory>

#include "engine/exec_context.hpp"
#include "matrix/view.hpp"
#include "nn/lstm.hpp"
#include "nn/module.hpp"
#include "nn/transformer.hpp"

namespace biq::nn {

/// One frozen (module, batch, ExecContext) whole-network recipe. Compile
/// once for the bound batch; run() any number of times — warm runs
/// perform zero heap allocations. The plan borrows the module and the
/// context (both must outlive it) and owns its projections' GemmPlans
/// plus the activation arena layout; one caller may run it at a time
/// (it owns the context's scratch and its arena slots while running).
/// Re-compile when the batch width or the context change.
class ModelPlan {
 public:
  /// Compiles the module tree via the generic walker. `batch` is the
  /// token/frame count the plan is bound to: x is module.in_rows() x
  /// batch, y is module.out_shape(...).rows x batch. `fuse` enables
  /// epilogue fusion (bias/activation/residual folded into producer
  /// GEMM plans — the default); fuse = false compiles every seam as a
  /// separate pass, for A/B comparisons. Outputs are bitwise identical
  /// either way (the fused arithmetic order is the contract).
  ModelPlan(const PlannableModule& module, std::size_t batch,
            ExecContext& ctx, bool fuse = true);

  ~ModelPlan();
  ModelPlan(ModelPlan&&) noexcept;
  ModelPlan& operator=(ModelPlan&&) noexcept;

  /// The hot path: the whole model's forward through the frozen recipe.
  /// x must be input_rows() x batch(), y output_rows() x batch()
  /// (overwritten); both may be strided windows of larger buffers.
  /// Bitwise identical to the module's eager forward. Throws
  /// std::invalid_argument naming the offending dims on any mismatch.
  void run(ConstMatrixView x, MatrixView y) const;

  /// Batch width (tokens / frames) the plan was compiled for.
  [[nodiscard]] std::size_t batch() const noexcept;
  [[nodiscard]] std::size_t input_rows() const noexcept;
  [[nodiscard]] std::size_t output_rows() const noexcept;
  /// Packed activation-arena footprint (the planner's high-water mark).
  [[nodiscard]] std::size_t arena_floats() const noexcept;
  [[nodiscard]] std::size_t arena_bytes() const noexcept {
    return arena_floats() * sizeof(float);
  }
  /// Sum of all planned tensors — arena_floats() <= this; the gap is
  /// the liveness packing's saving.
  [[nodiscard]] std::size_t unpacked_floats() const noexcept;
  [[nodiscard]] ExecContext& context() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Batch-adaptive wrapper (the PlanCache pattern one level up): serves
/// run() from a compiled ModelPlan, re-compiling only when the model,
/// batch width or context change — steady fixed-shape traffic runs the
/// warm plan, a shape change pays one re-plan (the superseded plan's
/// activation block returns to the context automatically). The model
/// must outlive the cache. Model may be any PlannableModule type.
template <typename Model>
class ModelPlanCache {
 public:
  void run(const Model& model, ConstMatrixView x, MatrixView y,
           ExecContext& ctx) {
    if (plan_ == nullptr || model_ != &model || plan_->batch() != x.cols() ||
        &plan_->context() != &ctx) {
      plan_ = std::make_unique<ModelPlan>(model, x.cols(), ctx);
      model_ = &model;
    }
    plan_->run(x, y);
  }

  /// The currently compiled plan (nullptr before the first run).
  [[nodiscard]] const ModelPlan* plan() const noexcept { return plan_.get(); }

 private:
  std::unique_ptr<ModelPlan> plan_;
  const Model* model_ = nullptr;
};

}  // namespace biq::nn
